// Exact gap: on small instances the Section-IV MIP can be solved to
// optimality by branch and bound. This example measures the optimality
// gap of every heuristic (how many more PMs than the optimum each one
// uses) across a batch of random instances — the reason the paper
// argues for a cheap heuristic is that this exact search explodes far
// beyond testbed scale.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"pagerankvm"
)

const pmType = "host"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	shape, err := pagerankvm.NewShape(
		pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4},
		pagerankvm.Group{Name: "mem", Dims: 1, Cap: 8},
	)
	if err != nil {
		return err
	}
	types := []pagerankvm.VMType{
		pagerankvm.NewVMType("small",
			pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}},
			pagerankvm.Demand{Group: "mem", Units: []int{2}}),
		pagerankvm.NewVMType("wide",
			pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}},
			pagerankvm.Demand{Group: "mem", Units: []int{2}}),
		pagerankvm.NewVMType("fat",
			pagerankvm.Demand{Group: "cpu", Units: []int{3, 3}},
			pagerankvm.Demand{Group: "mem", Units: []int{3}}),
		pagerankvm.NewVMType("chunky",
			pagerankvm.Demand{Group: "cpu", Units: []int{2}},
			pagerankvm.Demand{Group: "mem", Units: []int{5}}),
	}
	table, err := pagerankvm.BuildJointTable(shape, types, pagerankvm.RankOptions{})
	if err != nil {
		return err
	}
	reg := pagerankvm.NewRegistry()
	reg.Add(pmType, table)

	newPMs := func(n int) []*pagerankvm.PM {
		pms := make([]*pagerankvm.PM, n)
		for i := range pms {
			pms[i] = pagerankvm.NewPM(i, pmType, shape)
		}
		return pms
	}

	placers := []pagerankvm.Placer{
		pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1)),
		pagerankvm.FirstFit{},
		pagerankvm.FFDSum{},
		pagerankvm.CompVM{},
		pagerankvm.BestFit{},
	}
	extraPMs := map[string]int{}
	totalOptimal := 0
	searchNodes := 0

	const instances = 25
	rng := rand.New(rand.NewSource(11))
	for inst := 0; inst < instances; inst++ {
		n := 6 + rng.Intn(7)
		var vms []*pagerankvm.VM
		for i := 0; i < n; i++ {
			vt := types[rng.Intn(len(types))]
			vms = append(vms, &pagerankvm.VM{
				ID:   i,
				Type: vt.Name,
				Req:  map[string]pagerankvm.VMType{pmType: vt},
			})
		}
		sol, err := pagerankvm.SolveExact(newPMs(6), vms, pagerankvm.ExactOptions{})
		if errors.Is(err, pagerankvm.ErrInfeasible) {
			continue
		}
		if err != nil {
			return err
		}
		totalOptimal += sol.PMsUsed
		searchNodes += sol.Nodes

		for _, p := range placers {
			cluster := pagerankvm.NewCluster(newPMs(6))
			queue := append([]*pagerankvm.VM(nil), vms...)
			if o, ok := p.(interface{ OrderVMs([]*pagerankvm.VM) }); ok {
				o.OrderVMs(queue)
			}
			for _, vm := range queue {
				pm, assign, err := p.Place(cluster, vm, nil)
				if err != nil {
					return fmt.Errorf("%s on instance %d: %w", p.Name(), inst, err)
				}
				if err := cluster.Host(pm, vm, assign); err != nil {
					return err
				}
			}
			extraPMs[p.Name()] += cluster.NumUsed() - sol.PMsUsed
		}
	}

	fmt.Printf("%d random instances, optimal total %d PMs (%d search nodes)\n",
		instances, totalOptimal, searchNodes)
	fmt.Printf("%-12s %s\n", "heuristic", "extra PMs vs optimum")
	for _, p := range placers {
		fmt.Printf("%-12s %d\n", p.Name(), extraPMs[p.Name()])
	}
	return nil
}
