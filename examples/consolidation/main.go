// Consolidation: an EC2-style datacenter (Table I/II catalogs built
// through the public quantization helpers) receiving tenant batches of
// VMs, placed by all four algorithms, then driven through a 24-hour
// trace-driven simulation. Prints PMs used, energy, migrations and SLO
// violations per algorithm — a single-run miniature of the paper's
// Figures 3/5/6/7.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"pagerankvm"
)

const (
	vcpusPerCore = 4
	memQuantum   = 3.75 // GiB
	diskQuantum  = 8.0  // GB
)

type pmSpec struct {
	name    string
	cores   int
	coreGHz float64
	memGiB  float64
	disks   int
	diskGB  float64
	power   *pagerankvm.EnergyModel
}

type vmSpec struct {
	name    string
	vcpus   int
	vcpuGHz float64
	memGiB  float64
	vdisks  int
	vdiskGB float64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pmSpecs := []pmSpec{
		{name: "M3", cores: 8, coreGHz: 2.6, memGiB: 64, disks: 4, diskGB: 250, power: pagerankvm.PowerModelE52670()},
		{name: "C3", cores: 8, coreGHz: 2.8, memGiB: 60, disks: 4, diskGB: 250, power: pagerankvm.PowerModelE52680()},
	}
	vmSpecs := []vmSpec{
		{name: "m3.medium", vcpus: 1, vcpuGHz: 0.6, memGiB: 3.75, vdisks: 1, vdiskGB: 4},
		{name: "m3.large", vcpus: 2, vcpuGHz: 0.6, memGiB: 7.5, vdisks: 1, vdiskGB: 32},
		{name: "m3.xlarge", vcpus: 4, vcpuGHz: 0.6, memGiB: 15, vdisks: 2, vdiskGB: 40},
		{name: "c3.large", vcpus: 2, vcpuGHz: 0.7, memGiB: 3.75, vdisks: 2, vdiskGB: 16},
		{name: "c3.xlarge", vcpus: 4, vcpuGHz: 0.7, memGiB: 7.5, vdisks: 2, vdiskGB: 40},
	}

	// Shapes and per-PM-type quantized demands.
	shapes := map[string]*pagerankvm.Shape{}
	demands := map[string]map[string]pagerankvm.VMType{}
	models := map[string]*pagerankvm.EnergyModel{}
	for _, p := range pmSpecs {
		shape, err := pagerankvm.NewShape(
			pagerankvm.Group{Name: "cpu", Dims: p.cores, Cap: vcpusPerCore},
			pagerankvm.Group{Name: "mem", Dims: 1, Cap: pagerankvm.QuantizeCap(p.memGiB, memQuantum)},
			pagerankvm.Group{Name: "disk", Dims: p.disks, Cap: pagerankvm.QuantizeCap(p.diskGB, diskQuantum)},
		)
		if err != nil {
			return err
		}
		shapes[p.name] = shape
		models[p.name] = p.power
		byVM := map[string]pagerankvm.VMType{}
		quantum := p.coreGHz / vcpusPerCore
		for _, v := range vmSpecs {
			cpu := make([]int, v.vcpus)
			for i := range cpu {
				cpu[i] = pagerankvm.Quantize(v.vcpuGHz, quantum)
			}
			dsk := make([]int, v.vdisks)
			for i := range dsk {
				dsk[i] = pagerankvm.Quantize(v.vdiskGB, diskQuantum)
			}
			byVM[v.name] = pagerankvm.NewVMType(v.name,
				pagerankvm.Demand{Group: "cpu", Units: cpu},
				pagerankvm.Demand{Group: "mem", Units: []int{pagerankvm.Quantize(v.memGiB, memQuantum)}},
				pagerankvm.Demand{Group: "disk", Units: dsk},
			)
		}
		demands[p.name] = byVM
	}

	// One factored ranker per PM type.
	reg := pagerankvm.NewRegistry()
	for name, shape := range shapes {
		// Walk vmSpecs (not the demands map) so the type list — and
		// with it the rank table build — is ordered deterministically.
		var types []pagerankvm.VMType
		for _, v := range vmSpecs {
			if d, ok := demands[name][v.name]; ok && d.Validate(shape) == nil {
				types = append(types, d)
			}
		}
		ranker, err := pagerankvm.BuildFactoredTable(shape, types, pagerankvm.RankOptions{})
		if err != nil {
			return err
		}
		reg.Add(name, ranker)
	}

	// A tenant-batched request stream with PlanetLab-style traces.
	const (
		numVMs = 400
		steps  = 288
	)
	gen := pagerankvm.PlanetLabTrace{Seed: 7}
	rng := rand.New(rand.NewSource(7))
	var workloads []pagerankvm.Workload
	for len(workloads) < numVMs {
		spec := vmSpecs[rng.Intn(len(vmSpecs))]
		batch := 1 + rng.Intn(8)
		for b := 0; b < batch && len(workloads) < numVMs; b++ {
			id := len(workloads)
			req := map[string]pagerankvm.VMType{}
			for pmName := range shapes {
				req[pmName] = demands[pmName][spec.name]
			}
			workloads = append(workloads, pagerankvm.Workload{
				VM:    &pagerankvm.VM{ID: id, Type: spec.name, Req: req},
				Trace: gen.Series(id, steps),
			})
		}
	}

	newCluster := func() *pagerankvm.Cluster {
		var pms []*pagerankvm.PM
		for i := 0; i < 150; i++ {
			for _, p := range pmSpecs {
				pms = append(pms, pagerankvm.NewPM(len(pms), p.name, shapes[p.name]))
			}
		}
		return pagerankvm.NewCluster(pms)
	}

	prvm := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(7))
	algorithms := []struct {
		placer  pagerankvm.Placer
		evictor pagerankvm.Evictor
	}{
		{placer: prvm, evictor: pagerankvm.RankEvictor{Placer: prvm}},
		{placer: pagerankvm.FirstFit{}, evictor: pagerankvm.MMTEvictor{}},
		{placer: pagerankvm.FFDSum{}, evictor: pagerankvm.MMTEvictor{}},
		{placer: pagerankvm.CompVM{}, evictor: pagerankvm.MMTEvictor{}},
	}
	fmt.Printf("%-12s %8s %12s %12s %8s\n", "algorithm", "PMs", "energy kWh", "migrations", "SLO %")
	for _, alg := range algorithms {
		s, err := pagerankvm.NewSimulation(
			pagerankvm.SimConfig{Interval: 300 * time.Second, Horizon: 24 * time.Hour},
			newCluster(), alg.placer, alg.evictor, models, workloads)
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d %12.1f %12d %8.2f\n",
			alg.placer.Name(), res.PMsUsed, res.EnergyKWh, res.Migrations, res.SLOViolationPct)
	}
	return nil
}
