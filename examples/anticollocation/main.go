// Anti-collocation: a VM's vCPUs must land on distinct physical cores
// and its virtual disks on distinct physical disks (paper Equ. 3/4 and
// 8/9). This example shows the feasible-permutation machinery, an
// infeasible request, and how the constraint changes what a PM can
// accept even when raw capacity is sufficient.
package main

import (
	"fmt"
	"log"

	"pagerankvm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small host: 2 cores x 4 slots, 1 memory dim, 2 disks.
	shape, err := pagerankvm.NewShape(
		pagerankvm.Group{Name: "cpu", Dims: 2, Cap: 4},
		pagerankvm.Group{Name: "mem", Dims: 1, Cap: 8},
		pagerankvm.Group{Name: "disk", Dims: 2, Cap: 10},
	)
	if err != nil {
		return err
	}

	// A database VM: 2 vCPUs (anti-collocated across cores), 4 memory
	// units, and 2 virtual disks that must not share a physical disk.
	db := pagerankvm.NewVMType("db",
		pagerankvm.Demand{Group: "cpu", Units: []int{2, 2}},
		pagerankvm.Demand{Group: "mem", Units: []int{4}},
		pagerankvm.Demand{Group: "disk", Units: []int{5, 5}},
	)

	empty := shape.Zero()
	fmt.Printf("distinct placements of %s on an empty host:\n", db.Name)
	for _, pl := range pagerankvm.Placements(shape, empty, db) {
		fmt.Printf("  assignment %v -> profile %v\n", pl.Assign, pl.Result)
	}

	// A 3-vCPU request cannot be anti-collocated across 2 cores even
	// though 3 slots are free in aggregate.
	tooWide := pagerankvm.NewVMType("too-wide",
		pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1}})
	fmt.Printf("\n%s fits empty host: %v (needs 3 distinct cores, host has 2)\n",
		tooWide.Name, pagerankvm.Fits(shape, empty, tooWide))

	// Capacity vs anti-collocation: after one db VM, disks hold 5/10
	// each — 10 units free in aggregate — yet a second db VM fits,
	// while a VM wanting two 6-unit virtual disks does not.
	used := pagerankvm.Placements(shape, empty, db)[0].Result
	bigDisks := pagerankvm.NewVMType("big-disks",
		pagerankvm.Demand{Group: "disk", Units: []int{6, 6}})
	fmt.Printf("\nafter one db VM the host profile is %v\n", used)
	fmt.Printf("second db VM fits: %v\n", pagerankvm.Fits(shape, used, db))
	fmt.Printf("%s fits: %v (each disk has only 5 units left)\n",
		bigDisks.Name, pagerankvm.Fits(shape, used, bigDisks))

	// The rank table sees the difference too: profiles that strand a
	// dimension score lower.
	table, err := pagerankvm.BuildJointTable(shape, []pagerankvm.VMType{db}, pagerankvm.RankOptions{})
	if err != nil {
		return err
	}
	s1, _ := table.Score(used)
	s0, _ := table.Score(empty)
	fmt.Printf("\nscore(empty) = %.4f, score(one db) = %.4f\n", s0, s1)
	return nil
}
