// Quickstart: build the paper's running-example rank table (a PM with
// capacity [4,4,4,4] and VM types {[1,1],[1,1,1,1]}), inspect the
// profile scores behind Figures 1 and 2, and place a handful of VMs
// with Algorithm 2.
package main

import (
	"fmt"
	"log"

	"pagerankvm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A PM with 4 CPU cores of 4 vCPU slots each. Each core is its own
	// dimension: that is how anti-collocation is encoded.
	shape, err := pagerankvm.NewShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	if err != nil {
		return err
	}
	vmTypes := []pagerankvm.VMType{
		pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}}),
		pagerankvm.NewVMType("[1,1,1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}

	// Algorithm 1: rank every reachable PM profile.
	table, err := pagerankvm.BuildJointTable(shape, vmTypes, pagerankvm.RankOptions{})
	if err != nil {
		return err
	}
	fmt.Println("profile scores (Figure 2's comparison):")
	for _, p := range []pagerankvm.Vec{{3, 3, 3, 3}, {4, 4, 2, 2}, {3, 3, 2, 2}, {4, 3, 3, 3}} {
		score, _ := table.Score(p)
		fmt.Printf("  %v  %.4f\n", p, score)
	}

	// Algorithm 2: place VMs on a two-PM cluster.
	reg := pagerankvm.NewRegistry()
	reg.Add("host", table)
	placer := pagerankvm.NewPageRankVM(reg, pagerankvm.WithSeed(1))
	cluster := pagerankvm.NewCluster([]*pagerankvm.PM{
		pagerankvm.NewPM(0, "host", shape),
		pagerankvm.NewPM(1, "host", shape),
	})

	queue := []string{"[1,1]", "[1,1,1,1]", "[1,1]", "[1,1]", "[1,1,1,1]"}
	for i, name := range queue {
		var vt pagerankvm.VMType
		for _, t := range vmTypes {
			if t.Name == name {
				vt = t
			}
		}
		vm := &pagerankvm.VM{ID: i, Type: name, Req: map[string]pagerankvm.VMType{"host": vt}}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			return err
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			return err
		}
		fmt.Printf("vm %d (%s) -> pm %d, profile now %v\n", i, name, pm.ID, pm.Used())
	}
	fmt.Printf("PMs used: %d\n", cluster.NumUsed())
	return nil
}
