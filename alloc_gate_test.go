//go:build !race

package pagerankvm_test

// Allocation gate for the ~25ns ScoreOn fast path: the hotalloc
// analyzer holds the annotated functions allocation-free statically,
// and this test holds them there at runtime. Excluded under -race
// because the race runtime instruments allocations and skews
// AllocsPerRun.

import (
	"testing"

	"pagerankvm/internal/experiments"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
)

func TestScoreOnZeroAllocs(t *testing.T) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg, placement.WithSeed(1))
	cluster := cat.BuildCluster(4)
	for id := 0; id < 6; id++ {
		vm, err := cat.NewVM(id, "m3.large")
		if err != nil {
			t.Fatal(err)
		}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			t.Fatal(err)
		}
	}
	pm := cluster.UsedPMs()[0]
	probe, err := cat.NewVM(10_000, "c3.xlarge")
	if err != nil {
		t.Fatal(err)
	}
	// Warm the per-PM node-id cache so the measured loop is pure
	// steady state — exactly what BenchmarkPlaceLookup/fast times.
	if _, ok := placer.ScoreOn(pm, probe); !ok {
		t.Fatal("probe does not fit the loaded PM")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, ok := placer.ScoreOn(pm, probe); !ok {
			t.Fatal("lookup failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ScoreOn fast path allocates %.1f times per op, want 0", allocs)
	}
}

// TestCacheHitZeroAllocs holds the table-cache hit path allocation-free:
// the key is assembled in a stack buffer, the probe goes through the
// compiler's map[string(bytes)] optimization, and waiting on the
// completed build is a receive from an already-closed channel.
func TestCacheHitZeroAllocs(t *testing.T) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		t.Fatal(err)
	}
	cache := ranktable.NewCache(0, nil)
	opts := ranktable.Options{Cache: cache}
	// Warm the cache with the production heterogeneous fleet: every
	// factored key and every per-group joint key lands in the cache.
	if _, err := cat.BuildRegistry(opts); err != nil {
		t.Fatal(err)
	}
	pm := cat.PMs[0]
	shape, ok := cat.Shape(pm.Name)
	if !ok {
		t.Fatalf("no shape for %s", pm.Name)
	}
	var types []resource.VMType
	for _, vm := range cat.VMs {
		d, ok := cat.Demand(pm.Name, vm.Name)
		if ok && d.Validate(shape) == nil {
			types = append(types, d)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ranktable.NewFactored(shape, types, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit table lookup allocates %.1f times per op, want 0", allocs)
	}
}
