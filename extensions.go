package pagerankvm

import (
	"pagerankvm/internal/network"
	"pagerankvm/internal/placement"
)

// Network-aware placement (internal/network): the paper's stated
// future work — bandwidth efficiency via rack-affinity tie-breaking.
type (
	// Topology groups PMs into racks.
	Topology = network.Topology
	// Traffic is a symmetric inter-VM bandwidth matrix.
	Traffic = network.Traffic
	// NetworkAwarePlacer decorates PageRankVM with rack affinity.
	NetworkAwarePlacer = network.Placer
)

// NewTopology assigns the PMs to racks of rackSize in inventory order.
func NewTopology(pms []*PM, rackSize int) (*Topology, error) {
	return network.NewTopology(pms, rackSize)
}

// NewTraffic returns an empty traffic matrix.
func NewTraffic() *Traffic { return network.NewTraffic() }

// TenantTraffic builds all-pairs intra-tenant flows.
func TenantTraffic(groups [][]int, rate float64) *Traffic {
	return network.TenantTraffic(groups, rate)
}

// CrossRackTraffic sums the traffic crossing rack boundaries under the
// cluster's current assignment.
func CrossRackTraffic(c *Cluster, topo *Topology, tr *Traffic) float64 {
	return network.CrossRack(c, topo, tr)
}

// NewNetworkAwarePlacer wraps a PageRankVM placer with rack-affinity
// tie-breaking (tolerance <= 0 selects the default 0.1).
func NewNetworkAwarePlacer(inner *placement.PageRankVM, topo *Topology, tr *Traffic, tolerance float64) *NetworkAwarePlacer {
	p := &network.Placer{Inner: inner, Topo: topo, Traffic: tr}
	if tolerance > 0 {
		p.Tolerance = &tolerance
	}
	return p
}
