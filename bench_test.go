package pagerankvm_test

// One benchmark per table and figure of the paper (see DESIGN.md §4
// for the experiment index), plus the ablation benchmarks A1-A5. The
// figure benchmarks run laptop-scale configurations and report the
// headline metric of the reproduced artifact via b.ReportMetric; the
// full-scale numbers in EXPERIMENTS.md come from cmd/prvm-exp.

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"pagerankvm"
	"pagerankvm/internal/experiments"
	"pagerankvm/internal/mip"
	"pagerankvm/internal/obs"
	"pagerankvm/internal/opt"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
	"pagerankvm/internal/resource"
	"pagerankvm/internal/testbed"
)

// --- Tables I-III ---

func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3PowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.WriteTable3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1 and 2: profile ranking ---

func BenchmarkFigure1RankGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.PaperExampleTable(ranktable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if table.Len() != 70 {
			b.Fatalf("table has %d profiles", table.Len())
		}
	}
}

func BenchmarkFigure2ProfileQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		comps, err := experiments.RunFigure2(ranktable.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			if !c.Holds {
				b.Fatalf("paper ordering %v > %v broken", c.Better, c.Worse)
			}
		}
	}
}

// --- Figures 3, 5, 6, 7: simulation sweeps ---

// benchSimFigure runs a reduced single-point sweep and reports the
// PageRankVM and FF medians of the figure's metric.
func benchSimFigure(b *testing.B, traceName string, metric experiments.Metric) {
	b.Helper()
	var last *experiments.SimSweep
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunSimSweep(experiments.SimConfig{
			Trace:      traceName,
			NumVMs:     []int{200},
			Reps:       1,
			Seed:       1,
			PMsPerType: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	reportCells(b, last.Cells, metric)
}

func reportCells(b *testing.B, cells []experiments.SimCell, metric experiments.Metric) {
	b.Helper()
	for _, c := range cells {
		switch c.Algorithm {
		case "PageRankVM":
			b.ReportMetric(c.Summary(metric).Median, "prvm")
		case "FF":
			b.ReportMetric(c.Summary(metric).Median, "ff")
		}
	}
}

func BenchmarkFigure3aPMsPlanetLab(b *testing.B) {
	benchSimFigure(b, "planetlab", experiments.MetricPMs)
}

func BenchmarkFigure3bPMsGoogle(b *testing.B) {
	benchSimFigure(b, "google", experiments.MetricPMs)
}

func BenchmarkFigure5aEnergyPlanetLab(b *testing.B) {
	benchSimFigure(b, "planetlab", experiments.MetricEnergy)
}

func BenchmarkFigure5bEnergyGoogle(b *testing.B) {
	benchSimFigure(b, "google", experiments.MetricEnergy)
}

func BenchmarkFigure6aMigrationsPlanetLab(b *testing.B) {
	benchSimFigure(b, "planetlab", experiments.MetricMigrations)
}

func BenchmarkFigure6bMigrationsGoogle(b *testing.B) {
	benchSimFigure(b, "google", experiments.MetricMigrations)
}

func BenchmarkFigure7aSLOPlanetLab(b *testing.B) {
	benchSimFigure(b, "planetlab", experiments.MetricSLO)
}

func BenchmarkFigure7bSLOGoogle(b *testing.B) {
	benchSimFigure(b, "google", experiments.MetricSLO)
}

// --- Figures 4 and 8: testbed sweeps ---

func benchTestbedFigure(b *testing.B, metric experiments.Metric) {
	b.Helper()
	var last *experiments.TestbedSweep
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunTestbedSweep(experiments.TestbedConfig{
			NumJobs: []int{60},
			Reps:    1,
			Seed:    1,
			Steps:   360,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = sweep
	}
	for _, c := range last.Cells {
		sum, ok := c.Summary(metric)
		if !ok {
			continue
		}
		switch c.Algorithm {
		case "PageRankVM":
			b.ReportMetric(sum.Median, "prvm")
		case "FF":
			b.ReportMetric(sum.Median, "ff")
		}
	}
}

func BenchmarkFigure4aTestbedPMs(b *testing.B) {
	benchTestbedFigure(b, experiments.MetricPMs)
}

func BenchmarkFigure4bTestbedMigrations(b *testing.B) {
	benchTestbedFigure(b, experiments.MetricMigrations)
}

func BenchmarkFigure8TestbedSLO(b *testing.B) {
	benchTestbedFigure(b, experiments.MetricSLO)
}

// --- Ablations ---

// packWithRanker places a fixed batched stream and returns PMs used.
func packWithRanker(b *testing.B, reg *ranktable.Registry) int {
	b.Helper()
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg, placement.WithSeed(1))
	cluster := cat.BuildCluster(120)
	names := make([]string, 0)
	for _, vm := range experiments.AmazonVMTypes() {
		names = append(names, vm.Name)
	}
	rng := rand.New(rand.NewSource(17))
	mix := experiments.VMMix()
	id := 0
	for id < 300 {
		ty := experiments.SampleVMType(mix, names, rng.Float64())
		batch := 1 + rng.Intn(8)
		for j := 0; j < batch && id < 300; j++ {
			vm, err := cat.NewVM(id, ty)
			if err != nil {
				b.Fatal(err)
			}
			pm, assign, err := placer.Place(cluster, vm, nil)
			if errors.Is(err, placement.ErrNoCapacity) {
				id++
				continue
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.Host(pm, vm, assign); err != nil {
				b.Fatal(err)
			}
			id++
		}
	}
	return cluster.MaxUsed
}

// A5: the three Algorithm 1 interpretations (see DESIGN.md).
func BenchmarkAblationRankMode(b *testing.B) {
	for _, mode := range []ranktable.Mode{
		ranktable.ModeAbsorption, ranktable.ModeReversePR, ranktable.ModeForwardPR,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			cat, err := experiments.AmazonCatalog()
			if err != nil {
				b.Fatal(err)
			}
			reg, err := cat.BuildRegistry(ranktable.Options{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			pms := 0
			for i := 0; i < b.N; i++ {
				pms = packWithRanker(b, reg)
			}
			b.ReportMetric(float64(pms), "pms")
		})
	}
}

// A1: joint versus factored ranking on a shape small enough for both.
func BenchmarkAblationJointVsFactored(b *testing.B) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 4, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 8},
	)
	types := []resource.VMType{
		resource.NewVMType("a",
			resource.Demand{Group: "cpu", Units: []int{1, 1}},
			resource.Demand{Group: "mem", Units: []int{2}}),
		resource.NewVMType("b",
			resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}},
			resource.Demand{Group: "mem", Units: []int{2}}),
	}
	b.Run("joint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ranktable.NewJoint(shape, types, ranktable.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ranktable.NewFactored(shape, types, ranktable.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// A3: the dead-end discount (BPRU for the PageRank modes, the reward
// exponent for the absorption mode).
func BenchmarkAblationBPRU(b *testing.B) {
	for _, tt := range []struct {
		name string
		opts ranktable.Options
	}{
		{name: "reverse-pr-with-bpru", opts: ranktable.Options{Mode: ranktable.ModeReversePR}},
		{name: "reverse-pr-no-bpru", opts: ranktable.Options{Mode: ranktable.ModeReversePR, DisableBPRU: true}},
		{name: "absorption-exp8", opts: ranktable.Options{}},
		{name: "absorption-exp1", opts: ranktable.Options{RewardExponent: opt.F(1)}},
	} {
		b.Run(tt.name, func(b *testing.B) {
			var deadEnd, clean float64
			for i := 0; i < b.N; i++ {
				table, err := experiments.PaperExampleTable(tt.opts)
				if err != nil {
					b.Fatal(err)
				}
				deadEnd, _ = table.Score(resource.Vec{4, 3, 3, 3})
				clean, _ = table.Score(resource.Vec{3, 3, 2, 2})
			}
			b.ReportMetric(deadEnd, "dead-end-score")
			b.ReportMetric(clean, "clean-score")
		})
	}
}

// A2: full used-list scan versus the Section V-C 2-choice variant.
func BenchmarkAblation2Choice(b *testing.B) {
	for _, tt := range []struct {
		name string
		opts []placement.PageRankOption
	}{
		{name: "full-scan", opts: []placement.PageRankOption{placement.WithSeed(1)}},
		{name: "two-choice", opts: []placement.PageRankOption{placement.WithSeed(1), placement.WithTwoChoice()}},
	} {
		b.Run(tt.name, func(b *testing.B) {
			cat, err := experiments.AmazonCatalog()
			if err != nil {
				b.Fatal(err)
			}
			reg, err := cat.BuildRegistry(ranktable.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				placer := placement.NewPageRankVM(reg, tt.opts...)
				cluster := cat.BuildCluster(150)
				for id := 0; id < 400; id++ {
					vm, err := cat.NewVM(id, "m3.large")
					if err != nil {
						b.Fatal(err)
					}
					pm, assign, err := placer.Place(cluster, vm, nil)
					if err != nil {
						b.Fatal(err)
					}
					if err := cluster.Host(pm, vm, assign); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cluster.MaxUsed), "pms")
			}
		})
	}
}

// A4: heuristics versus the exact branch-and-bound optimum.
func BenchmarkExactGap(b *testing.B) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []resource.VMType{
		resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}}),
		resource.NewVMType("[1,1,1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}}),
	}
	newPMs := func() []*placement.PM {
		pms := make([]*placement.PM, 4)
		for i := range pms {
			pms[i] = placement.NewPM(i, "h", shape)
		}
		return pms
	}
	rng := rand.New(rand.NewSource(5))
	var vms []*placement.VM
	for i := 0; i < 9; i++ {
		vt := types[rng.Intn(len(types))]
		vms = append(vms, &placement.VM{
			ID: i, Type: vt.Name,
			Req: map[string]resource.VMType{"h": vt},
		})
	}
	optimal := 0
	for i := 0; i < b.N; i++ {
		sol, err := mip.Solve(newPMs(), vms, mip.Options{})
		if err != nil {
			b.Fatal(err)
		}
		optimal = sol.PMsUsed
	}
	b.ReportMetric(float64(optimal), "optimal-pms")
}

// Extension: underload consolidation (the standard CloudSim companion
// policy, off in the paper's setup) — energy with and without.
func BenchmarkExtensionConsolidation(b *testing.B) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, underload float64) {
		b.Helper()
		var energyKWh float64
		for i := 0; i < b.N; i++ {
			sweep, err := experiments.RunSimSweep(experiments.SimConfig{
				Trace:      "google",
				NumVMs:     []int{200},
				Reps:       1,
				Seed:       1,
				PMsPerType: 100,
				Underload:  underload,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, c := range sweep.Cells {
				if c.Algorithm == "PageRankVM" {
					energyKWh = c.EnergyKWh.Median
				}
			}
		}
		b.ReportMetric(energyKWh, "kwh")
	}
	_ = cat
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("on-30pct", func(b *testing.B) { run(b, 0.3) })
}

// Extension: the network-aware decorator (the paper's future work)
// versus plain PageRankVM, measured by cross-rack traffic at equal
// workloads.
func BenchmarkExtensionNetworkAware(b *testing.B) {
	shape := resource.MustShape(resource.Group{Name: "cpu", Dims: 4, Cap: 4})
	vt := resource.NewVMType("[1,1]", resource.Demand{Group: "cpu", Units: []int{1, 1}})
	table, err := ranktable.NewJoint(shape, []resource.VMType{vt}, ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	reg := ranktable.NewRegistry()
	reg.Add("h", table)

	// 6 tenants of 4 communicating VMs each, arriving into a cluster
	// fragmented by earlier churn.
	var groups [][]int
	for tnt := 0; tnt < 6; tnt++ {
		var g []int
		for k := 0; k < 4; k++ {
			g = append(g, 1000+tnt*4+k)
		}
		groups = append(groups, g)
	}
	traffic := pagerankvm.TenantTraffic(groups, 1)

	run := func(b *testing.B, useNet bool) {
		b.Helper()
		var cross float64
		for i := 0; i < b.N; i++ {
			pms := make([]*placement.PM, 16)
			for j := range pms {
				pms[j] = placement.NewPM(j, "h", shape)
			}
			cluster := placement.NewCluster(pms)
			topo, err := pagerankvm.NewTopology(pms, 4)
			if err != nil {
				b.Fatal(err)
			}
			// Fragment the fleet: residual filler VMs left behind by
			// departed tenants, spread over every PM.
			rng := rand.New(rand.NewSource(11))
			fillerID := 0
			for _, pm := range pms {
				for k := 0; k < 1+rng.Intn(5); k++ {
					vm := &placement.VM{ID: fillerID, Type: vt.Name, Req: map[string]resource.VMType{"h": vt}}
					fillerID++
					demand, _ := vm.DemandOn("h")
					if assign := resource.GreedyAssign(pm.Shape, pm.Used(), demand); assign != nil {
						if err := cluster.Host(pm, vm, assign); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			inner := placement.NewPageRankVM(reg, placement.WithSeed(3))
			var placer placement.Placer = inner
			if useNet {
				placer = pagerankvm.NewNetworkAwarePlacer(inner, topo, traffic, 0.25)
			}
			// Tenants' requests interleave (k-th VM of every tenant,
			// then the next), the arrival pattern that scatters
			// rack-oblivious placement.
			for k := 0; k < 4; k++ {
				for _, g := range groups {
					id := g[k]
					vm := &placement.VM{ID: id, Type: vt.Name, Req: map[string]resource.VMType{"h": vt}}
					pm, assign, err := placer.Place(cluster, vm, nil)
					if err != nil {
						b.Fatal(err)
					}
					if err := cluster.Host(pm, vm, assign); err != nil {
						b.Fatal(err)
					}
				}
			}
			cross = pagerankvm.CrossRackTraffic(cluster, topo, traffic)
		}
		b.ReportMetric(cross, "cross-rack-traffic")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("network-aware", func(b *testing.B) { run(b, true) })
}

// --- Micro-benchmarks of the core machinery ---

func BenchmarkPlacementsEnumeration(b *testing.B) {
	shape := resource.MustShape(
		resource.Group{Name: "cpu", Dims: 8, Cap: 4},
		resource.Group{Name: "mem", Dims: 1, Cap: 17},
		resource.Group{Name: "disk", Dims: 4, Cap: 31},
	)
	vt := resource.NewVMType("m3.xlarge",
		resource.Demand{Group: "cpu", Units: []int{1, 1, 1, 1}},
		resource.Demand{Group: "mem", Units: []int{4}},
		resource.Demand{Group: "disk", Units: []int{5, 5}},
	)
	p := resource.Vec{2, 1, 0, 3, 2, 1, 0, 4, 9, 10, 4, 0, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := resource.Placements(shape, p, vt); len(out) == 0 {
			b.Fatal("no placements")
		}
	}
}

func BenchmarkRankTableLookup(b *testing.B) {
	table, err := experiments.PaperExampleTable(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p := resource.Vec{3, 1, 4, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := table.Score(p); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkFactoredRegistryBuildM3C3(b *testing.B) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.BuildRegistry(ranktable.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageRankVMPlaceDecision(b *testing.B) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg, placement.WithSeed(1))
	cluster := cat.BuildCluster(60)
	// Pre-fill half the fleet.
	for id := 0; id < 200; id++ {
		vm, _ := cat.NewVM(id, "m3.large")
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			b.Fatal(err)
		}
	}
	probe, _ := cat.NewVM(10_000, "c3.xlarge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := placer.Place(cluster, probe, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlaceWithObs shares the BenchmarkPageRankVMPlaceDecision setup
// so the observer-on/off pair is directly comparable to the baseline.
func benchPlaceWithObs(b *testing.B, observer *obs.Observer) {
	b.Helper()
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg,
		placement.WithSeed(1), placement.WithObserver(observer))
	cluster := cat.BuildCluster(60)
	for id := 0; id < 200; id++ {
		vm, _ := cat.NewVM(id, "m3.large")
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			b.Fatal(err)
		}
	}
	probe, _ := cat.NewVM(10_000, "c3.xlarge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := placer.Place(cluster, probe, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// The disabled variant must stay within ~2% of the uninstrumented
// baseline (BenchmarkPageRankVMPlaceDecision): a nil observer reduces
// every instrument call to one branch.
func BenchmarkPlaceWithObsDisabled(b *testing.B) {
	benchPlaceWithObs(b, nil)
}

func BenchmarkPlaceWithObsEnabled(b *testing.B) {
	benchPlaceWithObs(b, obs.New())
}

func BenchmarkTestbedRoundTCP(b *testing.B) {
	reg, err := testbed.NewRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	_ = reg
	ctrl, agentEnd, err := testbed.DialTCPPair()
	if err != nil {
		b.Fatal(err)
	}
	agent := testbed.NewAgent(0, testbed.PMShape(), agentEnd)
	agent.Start()
	b.Cleanup(func() {
		_ = ctrl.Send(testbed.Message{Kind: testbed.KindShutdown})
		_, _ = ctrl.Recv()
		agent.Wait()
		_ = ctrl.Close()
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctrl.Send(testbed.Message{Kind: testbed.KindTick, Step: i}); err != nil {
			b.Fatal(err)
		}
		if _, err := ctrl.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuickstartFacade(b *testing.B) {
	shape := pagerankvm.MustShape(pagerankvm.Group{Name: "cpu", Dims: 4, Cap: 4})
	types := []pagerankvm.VMType{
		pagerankvm.NewVMType("[1,1]", pagerankvm.Demand{Group: "cpu", Units: []int{1, 1}}),
	}
	table, err := pagerankvm.BuildJointTable(shape, types, pagerankvm.RankOptions{})
	if err != nil {
		b.Fatal(err)
	}
	reg := pagerankvm.NewRegistry()
	reg.Add("h", table)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		placer := pagerankvm.NewPageRankVM(reg)
		cluster := pagerankvm.NewCluster([]*pagerankvm.PM{pagerankvm.NewPM(0, "h", shape)})
		vm := &pagerankvm.VM{ID: 0, Type: "[1,1]", Req: map[string]pagerankvm.VMType{"h": types[0]}}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			b.Fatal(err)
		}
	}
}
