package pagerankvm_test

import (
	"testing"

	"pagerankvm/internal/deschedule"
	"pagerankvm/internal/experiments"
	"pagerankvm/internal/placement"
	"pagerankvm/internal/ranktable"
)

// BenchmarkRebalanceStep prices one descheduler round over a loaded
// production cluster in steady state. An impossible gain margin (and no
// drain threshold) keeps every round move-free, so each iteration
// measures the pure scan cost — tentative release, Algorithm 2 re-ask,
// re-host — without mutating the cluster between iterations. This is
// the per-round overhead the serve daemon's background rebalance loop
// adds while the cluster is already well-packed, the common case.
func BenchmarkRebalanceStep(b *testing.B) {
	cat, err := experiments.AmazonCatalog()
	if err != nil {
		b.Fatal(err)
	}
	reg, err := cat.BuildRegistry(ranktable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	placer := placement.NewPageRankVM(reg, placement.WithSeed(1))
	cluster := cat.BuildCluster(4)
	types := []string{"m3.medium", "m3.large", "m3.xlarge", "c3.large", "c3.xlarge"}
	for id := 0; id < 24; id++ {
		vm, err := cat.NewVM(id, types[id%len(types)])
		if err != nil {
			b.Fatal(err)
		}
		pm, assign, err := placer.Place(cluster, vm, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := cluster.Host(pm, vm, assign); err != nil {
			b.Fatal(err)
		}
	}
	engine := deschedule.New(placer, deschedule.Config{MinGainFrac: 1e12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := engine.Rebalance(cluster); st.Moves != 0 {
			b.Fatalf("steady-state round committed %d moves", st.Moves)
		}
	}
}
