package pagerankvm

import (
	"pagerankvm/internal/testbed"
)

// GENI-style testbed emulation (internal/testbed): a centralized
// controller assigning jobs to per-PM agents over message passing.
type (
	// TestbedConfig parameterizes a testbed run.
	TestbedConfig = testbed.Config
	// TestbedJob is one job (emulated VM) with its lease window.
	TestbedJob = testbed.Job
	// TestbedResult mirrors the paper's Figure 4/8 metrics.
	TestbedResult = testbed.Result
	// TestbedHarness owns the agents of one experiment.
	TestbedHarness = testbed.Harness
	// TestbedController is the centralized scheduler.
	TestbedController = testbed.Controller
	// TestbedTransport selects in-memory pipes or loopback TCP.
	TestbedTransport = testbed.Transport
	// TestbedFaultConfig parameterizes deterministic fault injection
	// on the control protocol (drops, errors, delays, conn closes).
	TestbedFaultConfig = testbed.FaultConfig
)

// Testbed transports.
const (
	TestbedInMemory = testbed.TransportInMemory
	TestbedTCP      = testbed.TransportTCP
)

// TestbedPMType is the emulated instance type name used by the
// harness.
const TestbedPMType = testbed.PMType

// LaunchTestbed starts numPMs agents over the chosen transport.
func LaunchTestbed(numPMs int, tr TestbedTransport) (*TestbedHarness, error) {
	return testbed.Launch(numPMs, tr)
}

// LaunchTestbedWithFaults is LaunchTestbed with every controller-side
// connection wrapped in a seeded deterministic fault injector; the
// controller's retry/recovery path (TestbedConfig.CallTimeout,
// CallRetries, RetryBackoff) turns those faults into retries and, when
// an agent stays unreachable, dead-agent recovery.
func LaunchTestbedWithFaults(numPMs int, tr TestbedTransport, faults *TestbedFaultConfig) (*TestbedHarness, error) {
	return testbed.LaunchWithFaults(numPMs, tr, faults)
}

// ParseTestbedFaults parses the -faults flag syntax of cmd/prvm-testbed
// (e.g. "seed=7,drop=0.01,err=0.01,delay=5ms,delayprob=0.05").
func ParseTestbedFaults(spec string) (TestbedFaultConfig, error) {
	return testbed.ParseFaultSpec(spec)
}

// NewTestbedController assembles a controller over a harness.
func NewTestbedController(cfg TestbedConfig, h *TestbedHarness, placer Placer,
	evictor Evictor, jobs []TestbedJob) (*TestbedController, error) {
	return testbed.NewController(cfg, h.Cluster(), placer, evictor, h.Conns(), jobs)
}

// TestbedRegistry builds the rank-table registry for the testbed PM
// type (4 cores x 4 vCPU slots, job types [1,1] and [1,1,1,1]).
func TestbedRegistry(opts RankOptions) (*Registry, error) {
	return testbed.NewRegistry(opts)
}

// GenTestbedJobs builds the synthetic job stream of the Figure 4/8
// experiments.
func GenTestbedJobs(cfg testbed.JobConfig) ([]TestbedJob, error) {
	return testbed.GenJobs(testbed.NewJobVM, cfg)
}

// TestbedJobConfig parameterizes GenTestbedJobs.
type TestbedJobConfig = testbed.JobConfig
